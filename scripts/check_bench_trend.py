#!/usr/bin/env python3
"""Fail CI when a hot-path benchmark regresses against the committed baseline.

Compares a fresh ``bench_kernels`` JSON run against
``bench/baseline/bench_kernels.json``. Absolute timings are useless across
machines (laptop vs CI runner), so every benchmark is first normalized by
an anchor benchmark measured in the *same* run (a dense LU factorization,
which exercises pure FLOPs and cache and tracks overall machine speed).
The check fails when

    (current[name] / current[anchor]) / (baseline[name] / baseline[anchor])

exceeds ``--threshold`` (default 1.25, the ROADMAP "perf trajectory" bar)
for any hot-path benchmark present in both files.

Deterministic counters: benchmarks that emit machine-independent cost
counters are additionally gated on them, compared *un-normalized* against
the baseline (they are pure functions of the algorithm, not the runner):

* ``factor_nnz`` — nnz(L+U) of the sparse factor/refactor kernels and the
  sparse transient steps. A regression means the column ordering got
  worse, not that the runner was slow.
* ``newton_iters`` / ``lu_factors`` / ``lu_refactors`` — per-run Newton
  iteration and LU (re)factorization counts of the full-run benches
  (``BM_TranSens*``, ``BM_PssShooting*``, the op-amp deck), from the
  engines' SolveStats. A regression means convergence got worse or a
  pattern-reuse path stopped being taken.

All counter gates share ``--counter-threshold`` (default 1.05, the
``factor_nnz`` precedent — deterministic, so the bar is tight).

Trend history: ``--prev PATH`` additionally diffs the current run against
the previous CI run's artifact (downloaded by the workflow) across *all*
benchmarks the two runs share — the per-PR trajectory, not just the
absolute bar. The prev diff is informational (run-to-run noise on shared
runners is well above the baseline threshold); it never fails the job, and
a missing or unreadable prev file is reported and skipped so the first run
on a branch still passes.

Regenerate the baseline after an intentional perf change:

    ./build/bench_kernels --benchmark_format=json \
        --benchmark_out=bench/baseline/bench_kernels.json \
        --benchmark_out_format=json
"""

import argparse
import json
import sys

# The benchmarks that guard the product's hot paths: transient stepping,
# multi-RHS sensitivity, sparse refactorization, shooting PSS, the
# end-to-end BJT op-amp deck (bench_bjt_opamp, gated in its own CI step),
# and the parallel-runtime fan-outs (bench_runtime, gated in its own CI
# step with --anchor BM_SweepScaling/8/1 — each suite normalizes by an
# anchor measured in the SAME binary, so suites never cross-contaminate).
HOT_PREFIXES = (
    "BM_TransientStep",
    "BM_TranSens",
    "BM_SparseLuRefactor",
    "BM_SparseLuSolveMulti",
    "BM_PssShooting",
    "BM_BjtOpAmp",
    "BM_SweepScaling",
    "BM_SweepProcs",
    "BM_SensitivityParallel",
    "BM_MonodromyParallel",
    "BM_BatchEval",
    "BM_McBatched",
)
ANCHOR = "BM_DenseLuFactor/64"

# Machine-independent counters gated un-normalized against the baseline.
GATED_COUNTERS = ("factor_nnz", "newton_iters", "lu_factors", "lu_refactors")


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows
        out[b["name"]] = float(b["real_time"])
    return out


def load_counter(path, counter):
    """name -> value for benchmarks that emit the given counter."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if counter in b:
            out[b["name"]] = float(b[counter])
    return out


def check_counter(cur_path, base_path, counter, threshold):
    """Un-normalized counter comparison; returns failing benchmark names."""
    current = load_counter(cur_path, counter)
    baseline = load_counter(base_path, counter)
    common = sorted(set(current) & set(baseline))
    if not common:
        print(f"\ncounter trend: no {counter} counters in common; skipping")
        return []
    failures = []
    print(f"\n{counter} vs baseline ({len(common)} benchmarks, "
          f"un-normalized, fail past {threshold:.2f}x):")
    for name in common:
        base = baseline[name]
        if base > 0:
            ratio = current[name] / base
        else:  # 0 -> 0 is clean (dense benches emit zero refactors)
            ratio = 1.0 if current[name] == 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "  ok"
        print(f"{verdict}  {name:<40} {counter} {current[name]:8.0f} "
              f"(baseline {base:8.0f}, {ratio:5.2f}x)")
        if ratio > threshold:
            failures.append(f"{name}:{counter}")
    return failures


def diff_against_previous(current, prev_path, anchor):
    """Informational normalized diff against the previous run's artifact."""
    try:
        prev = load(prev_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"trend history: no usable previous artifact ({e}); skipping")
        return
    if anchor not in prev or anchor not in current:
        print("trend history: anchor missing from previous run; skipping")
        return
    common = sorted(set(prev) & set(current))
    if not common:
        print("trend history: no benchmarks in common with previous run")
        return
    print(f"\ntrend vs previous run ({len(common)} benchmarks, normalized, "
          "informational):")
    for name in common:
        ratio = (current[name] / current[anchor]) / (prev[name] / prev[anchor])
        marker = "+" if ratio > 1.05 else ("-" if ratio < 0.95 else " ")
        print(f"  {marker} {name:<44} {ratio:5.2f}x previous")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh bench_kernels JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when normalized ratio exceeds this (1.25 = +25%%)")
    ap.add_argument("--counter-threshold", "--fill-threshold",
                    dest="counter_threshold", type=float, default=1.05,
                    help="fail when a gated deterministic counter "
                         "(factor_nnz, newton_iters, lu_factors, "
                         "lu_refactors) exceeds baseline by this ratio")
    ap.add_argument("--prev", default=None,
                    help="previous CI run's bench JSON (informational "
                         "per-PR trend history; missing file is skipped)")
    ap.add_argument("--anchor", default=ANCHOR,
                    help="normalization anchor benchmark; must exist in the "
                         "same binary's output (default: %(default)s for "
                         "bench_kernels; bench_runtime uses "
                         "BM_SweepScaling/8/1)")
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    for name, table in (("current", current), ("baseline", baseline)):
        if args.anchor not in table:
            print(f"error: anchor {args.anchor} missing from {name} run",
                  file=sys.stderr)
            return 2

    cur_anchor = current[args.anchor]
    base_anchor = baseline[args.anchor]
    print(f"anchor {args.anchor}: current {cur_anchor:.0f} ns, "
          f"baseline {base_anchor:.0f} ns")

    failures = []
    checked = 0
    for name in sorted(baseline):
        if not name.startswith(HOT_PREFIXES) or name not in current:
            continue
        checked += 1
        ratio = (current[name] / cur_anchor) / (baseline[name] / base_anchor)
        verdict = "FAIL" if ratio > args.threshold else "  ok"
        print(f"{verdict}  {name:<40} {ratio:5.2f}x baseline (normalized)")
        if ratio > args.threshold:
            failures.append(name)

    if checked == 0:
        print("error: no hot-path benchmarks in common", file=sys.stderr)
        return 2

    counter_failures = []
    for counter in GATED_COUNTERS:
        counter_failures += check_counter(args.current, args.baseline,
                                          counter, args.counter_threshold)

    if args.prev:
        diff_against_previous(current, args.prev, args.anchor)

    if failures or counter_failures:
        if failures:
            print(f"\n{len(failures)} hot-path regression(s) past "
                  f"{args.threshold:.2f}x: {', '.join(failures)}",
                  file=sys.stderr)
        if counter_failures:
            print(f"\n{len(counter_failures)} counter regression(s) past "
                  f"{args.counter_threshold:.2f}x: "
                  f"{', '.join(counter_failures)}",
                  file=sys.stderr)
        return 1
    print(f"\nall {checked} hot-path benchmarks within "
          f"{args.threshold:.2f}x of baseline; deterministic counters "
          f"within {args.counter_threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
