#!/usr/bin/env python3
"""Validate netlist_runner's machine-readable outputs in CI.

Checks two files produced by a ``--metrics``/``--trace`` run:

* the metrics report (``--metrics out.json``) against the schema documented
  in docs/user_guide.md "Run reports": required top-level keys, the full
  counter and phase-timer key sets (they are a CI contract — renaming a
  counter breaks trend tooling), per-analysis SolveStats shape, and — when
  a sweep section is present — per-scenario consistency (attempts >= 1,
  failed scenarios carry an error string, counts add up);
* the Chrome trace file (``--trace out.json``) for trace-event-format
  well-formedness: a traceEvents array of complete ("X") events with
  numeric ts/dur >= 0 and, per (pid, tid) track, proper span nesting —
  overlapping non-nested events render as garbage in Perfetto.

Pure stdlib, exit 0 on success, 1 with a message per violation.

Usage:  check_run_report.py --metrics metrics.json [--trace trace.json]
"""

import argparse
import json
import sys

COUNTER_KEYS = {
    "dense_factors", "sparse_factors", "sparse_refactors",
    "factor_nnz_total", "solve_columns", "mna_evals", "newton_iterations",
    "steps_accepted", "scenarios_run", "scenario_retries",
    "batch_evals", "batch_symbolic_reuse",
}
PHASE_KEYS = {
    "parse", "dc", "transient", "sensitivity", "pss", "lptv", "pnoise",
    "mc", "scenario", "step", "newton", "kernel",
}
SOLVE_STATS_KEYS = {
    "newton_iterations", "steps", "factorizations", "refactorizations",
    "solves", "evals", "factor_nnz",
}


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_solve_stats(stats, where, errors):
    if not isinstance(stats, dict):
        errors.append(f"{where}: stats is not an object")
        return
    if set(stats) != SOLVE_STATS_KEYS:
        errors.append(f"{where}: stats keys {sorted(stats)} != "
                      f"{sorted(SOLVE_STATS_KEYS)}")
    for k, v in stats.items():
        if not is_uint(v):
            errors.append(f"{where}: stats.{k} = {v!r} is not a uint")


def check_metrics(path, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"metrics: unreadable ({e})")
        return
    if not isinstance(doc, dict):
        errors.append("metrics: top level is not an object")
        return

    for key in ("schema_version", "deck", "jobs", "counters", "phase_ns",
                "analyses"):
        if key not in doc:
            errors.append(f"metrics: missing required key '{key}'")
    if doc.get("schema_version") != 1:
        errors.append(f"metrics: schema_version {doc.get('schema_version')!r}"
                      " != 1")
    if not is_uint(doc.get("jobs", -1)) or doc.get("jobs") == 0:
        errors.append(f"metrics: jobs {doc.get('jobs')!r} is not a "
                      "positive integer")
    # "procs" arrived with the multi-process sweep (--procs); reports from
    # older binaries omit it, so it is optional — but when present it must
    # be a positive integer like jobs.
    if "procs" in doc and (not is_uint(doc["procs"]) or doc["procs"] == 0):
        errors.append(f"metrics: procs {doc['procs']!r} is not a "
                      "positive integer")

    counters = doc.get("counters", {})
    if isinstance(counters, dict):
        if set(counters) != COUNTER_KEYS:
            errors.append(f"metrics: counter keys {sorted(counters)} != "
                          f"{sorted(COUNTER_KEYS)}")
        for k, v in counters.items():
            if not is_uint(v):
                errors.append(f"metrics: counters.{k} = {v!r} is not a uint")
    else:
        errors.append("metrics: counters is not an object")

    phases = doc.get("phase_ns", {})
    if isinstance(phases, dict):
        if set(phases) != PHASE_KEYS:
            errors.append(f"metrics: phase_ns keys {sorted(phases)} != "
                          f"{sorted(PHASE_KEYS)}")
    else:
        errors.append("metrics: phase_ns is not an object")

    analyses = doc.get("analyses", [])
    if isinstance(analyses, list):
        for i, a in enumerate(analyses):
            if not isinstance(a, dict) or "name" not in a or "stats" not in a:
                errors.append(f"metrics: analyses[{i}] needs name + stats")
                continue
            check_solve_stats(a["stats"], f"analyses[{i}] ({a['name']})",
                              errors)
    else:
        errors.append("metrics: analyses is not an array")

    if "sweep" in doc:
        check_sweep(doc["sweep"], errors)


def check_sweep(sweep, errors):
    if not isinstance(sweep, dict):
        errors.append("metrics: sweep is not an object")
        return
    for key in ("scenarios", "failed", "recovered", "total_attempts",
                "stats", "per_scenario"):
        if key not in sweep:
            errors.append(f"metrics: sweep missing '{key}'")
            return
    check_solve_stats(sweep["stats"], "sweep", errors)
    per = sweep["per_scenario"]
    if not isinstance(per, list) or len(per) != sweep["scenarios"]:
        errors.append("metrics: per_scenario length != sweep.scenarios")
        return
    failed = recovered = attempts = 0
    for i, sc in enumerate(per):
        where = f"per_scenario[{i}]"
        for key in ("name", "ok", "attempts", "recovered", "stats"):
            if key not in sc:
                errors.append(f"metrics: {where} missing '{key}'")
                return
        if not is_uint(sc["attempts"]) or sc["attempts"] < 1:
            errors.append(f"metrics: {where}.attempts {sc['attempts']!r} < 1")
        if not sc["ok"]:
            failed += 1
            if not sc.get("error"):
                errors.append(f"metrics: {where} failed without an error")
        if sc["recovered"]:
            recovered += 1
            if sc["attempts"] < 2:
                errors.append(f"metrics: {where} recovered on attempt 1")
        attempts += sc["attempts"]
        check_solve_stats(sc["stats"], where, errors)
    if failed != sweep["failed"]:
        errors.append(f"metrics: sweep.failed {sweep['failed']} != "
                      f"counted {failed}")
    if recovered != sweep["recovered"]:
        errors.append(f"metrics: sweep.recovered {sweep['recovered']} != "
                      f"counted {recovered}")
    if attempts != sweep["total_attempts"]:
        errors.append(f"metrics: sweep.total_attempts "
                      f"{sweep['total_attempts']} != counted {attempts}")


def check_trace(path, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"trace: unreadable ({e})")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("trace: traceEvents is not an array")
        return
    tracks = {}
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            errors.append(f"trace: event {i} is not a complete ('X') event")
            continue
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in ev:
                errors.append(f"trace: event {i} missing '{key}'")
        ts, dur = ev.get("ts", -1), ev.get("dur", -1)
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"trace: event {i} ts {ts!r} is not >= 0")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"trace: event {i} dur {dur!r} is not >= 0")
            continue
        tracks.setdefault((ev.get("pid"), ev.get("tid")), []).append(
            (ts, ts + dur, ev.get("name")))
    for track, spans in tracks.items():
        for a in range(len(spans)):
            for b in range(a + 1, len(spans)):
                s0, e0, n0 = spans[a]
                s1, e1, n1 = spans[b]
                disjoint = e0 <= s1 or e1 <= s0
                nested = (s0 <= s1 and e1 <= e0) or (s1 <= s0 and e0 <= e1)
                if not (disjoint or nested):
                    errors.append(
                        f"trace: track {track}: '{n0}' [{s0},{e0}) overlaps "
                        f"'{n1}' [{s1},{e1}) without nesting")
    print(f"trace: {len(events)} events on {len(tracks)} track(s)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", required=True, help="metrics report JSON")
    ap.add_argument("--trace", default=None, help="Chrome trace JSON")
    args = ap.parse_args()

    errors = []
    check_metrics(args.metrics, errors)
    if args.trace:
        check_trace(args.trace, errors)

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("run report OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
