// Parallel-runtime benchmarks: scenario-sweep scaling over threads, the
// parallel multi-RHS sensitivity columns, and the shooting-PSS monodromy
// fan-out against the serial baselines.
//
//   BM_SweepScaling/<scenarios>/<jobs>       — uniform inverter-chain
//       transient scenarios fanned across the pool.
//   BM_SweepScalingRagged/<scenarios>/<jobs> — the work-stealing fixture:
//       a ragged mix of small chains with slow outliers pinned at block
//       boundaries, so the initial per-slot blocks are maximally
//       unbalanced and the scaling shown is the steal path's, not the
//       partition's.
//   BM_SensitivityParallel/<rows>/<jobs>     — column-partitioned
//       sensitivity recursion (jobs=1 is exactly the serial path:
//       ThreadPool(1) spawns no threads).
//   BM_MonodromyParallel/<stages>/<jobs>     — one period of shooting-PSS
//       monodromy accumulation on an N-stage ring from a warm orbit, the
//       column blocks fanned via PssOptions::pool.
//   BM_SweepProcs/<scenarios>/<procs>        — the multi-process sweep:
//       mismatch transients sharded across worker PROCESSES
//       (runProcessSweep, jobsPerWorker=1), measuring the spawn + IPC +
//       serialization overhead on top of the same scenario work
//       BM_SweepScaling runs in-process. procs=1 still pays one worker
//       process, so the procs=1 -> in-process jobs=1 gap is the floor
//       cost of the process boundary itself.
//
// Expected shape on a multi-core box (the CI runner): near-linear sweep
// scaling — on the ragged mix too, which only scales if the steal path
// redistributes the outlier-heavy initial blocks — ≥2x sensitivity
// speedup at 4 jobs for rows>=8, and >1.5x monodromy at 4 jobs on the
// 63-stage ring. On a 1-core container all
// flatten to ~1x; what the committed baseline then pins is the runtime's
// *overhead* — jobs>1 must not run materially slower than jobs=1. Either
// way the results are bit-identical across jobs (tests/test_runtime.cpp,
// tests/test_rf_sparse.cpp).
#include <benchmark/benchmark.h>

#include <map>

#include "circuit/bjt_opamp.hpp"
#include "circuit/stdcell.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient_sensitivity.hpp"
#include "runtime/ipc.hpp"
#include "runtime/process_sweep.hpp"
#include "runtime/scenario_sweep.hpp"

namespace psmn {
namespace {

std::unique_ptr<Netlist> makeChain(int stages, int rows, Real cLoad) {
  auto nl = std::make_unique<Netlist>();
  InverterChainOptions copt;
  copt.stages = stages;
  copt.rows = rows;
  copt.cLoad = cLoad;
  buildInverterChain(*nl, ProcessKit::cmos130(), copt);
  return nl;
}

/// Transient scenarios over a load-cap corner set on an 8-stage chain.
void BM_SweepScaling(benchmark::State& state) {
  const auto scenarios_n = static_cast<size_t>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  std::vector<SweepScenario> scenarios;
  for (size_t i = 0; i < scenarios_n; ++i) {
    SweepScenario sc;
    sc.name = "corner" + std::to_string(i);
    const Real cLoad = 2e-15 * (i % 8 + 1);
    sc.make = [cLoad] { return makeChain(8, 1, cLoad); };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "ch8";
    sc.t1 = 2e-9;
    sc.dt = 10e-12;
    sc.tran.storeStates = false;
    scenarios.push_back(std::move(sc));
  }
  ThreadPool pool(jobs);
  for (auto _ : state) {
    const auto results = runScenarioSweep(scenarios, pool);
    for (const auto& r : results) {
      if (!r.ok) state.SkipWithError(r.error.c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios_n);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_SweepScaling)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

/// The ragged mix: mostly 4-stage chains with a 16-stage outlier every
/// `outlierEvery` scenarios, placed so that a contiguous block partition
/// lands outliers and their trailing small scenarios on the same slot —
/// the initial blocks alone would idle the other slots while those blocks
/// drain; the steal path must redistribute the queued small scenarios for
/// this fixture to scale.
void BM_SweepScalingRagged(benchmark::State& state) {
  const auto scenarios_n = static_cast<size_t>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  constexpr size_t outlierEvery = 5;
  std::vector<SweepScenario> scenarios;
  for (size_t i = 0; i < scenarios_n; ++i) {
    SweepScenario sc;
    sc.name = "ragged" + std::to_string(i);
    const bool outlier = (i % outlierEvery == 0);
    const int stages = outlier ? 16 : 4;
    const Real cLoad = 2e-15 * (i % 4 + 1);
    sc.make = [stages, cLoad] { return makeChain(stages, 1, cLoad); };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "ch" + std::to_string(stages);
    sc.t1 = outlier ? 4e-9 : 1e-9;
    sc.dt = 10e-12;
    sc.tran.storeStates = false;
    scenarios.push_back(std::move(sc));
  }
  ThreadPool pool(jobs);
  for (auto _ : state) {
    const auto results = runScenarioSweep(scenarios, pool);
    for (const auto& r : results) {
      if (!r.ok) state.SkipWithError(r.error.c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios_n);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_SweepScalingRagged)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);

/// Column-partitioned transient sensitivity on `rows` 8-stage chains
/// (ns = 32*rows mismatch columns, sparse backend above 40 unknowns).
void BM_SensitivityParallel(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  auto nl = makeChain(8, rows, 5e-15);
  nl->finalize();
  MnaSystem sys(*nl);
  const auto sources = sys.collectSources(true, false);

  ThreadPool pool(jobs);
  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.pool = jobs > 1 ? &pool : nullptr;  // jobs=1: the plain serial path
  for (auto _ : state) {
    const auto res =
        runTransientSensitivity(sys, 0.0, 1e-9, 10e-12, sources, opt);
    benchmark::DoNotOptimize(res);
  }
  state.counters["unknowns"] = static_cast<double>(sys.size());
  state.counters["sources"] = static_cast<double>(sources.size());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_SensitivityParallel)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

/// Warm ring-oscillator orbit for the monodromy benchmark, computed once
/// per stage count (the transient warmup dominates setup and must not be
/// re-run for every jobs variant).
struct RingOrbitFixture {
  Netlist nl;
  std::unique_ptr<MnaSystem> sys;
  RealVector x0;
  Real period = 0.0;
};

const RingOrbitFixture& ringOrbitFixture(int stages) {
  static std::map<int, std::unique_ptr<RingOrbitFixture>> cache;
  auto& slot = cache[stages];
  if (!slot) {
    slot = std::make_unique<RingOrbitFixture>();
    auto kit = ProcessKit::cmos130();
    RingOscillatorOptions oopt;
    oopt.stages = stages;
    const auto osc = buildRingOscillator(slot->nl, kit, oopt);
    slot->sys = std::make_unique<MnaSystem>(slot->nl);
    const Real runTime = stages > 20 ? 400e-9 : 30e-9;
    const Real dt = stages > 20 ? 20e-12 : 10e-12;
    const RingWarmup warm = warmupRingOscillator(*slot->sys, osc, runTime, dt);
    slot->x0 = warm.state;
    slot->period = warm.periodEstimate;
  }
  return *slot;
}

/// One period of shooting-PSS monodromy accumulation (the dominant cost of
/// every shooting iteration) on an N-stage ring: n+2 per-step companion
/// solves batched against the shared accepted-step factorization, the
/// column blocks fanned across the pool via PssOptions::pool. jobs=1 is
/// the serial batched path. The workspace persists across iterations, so
/// the symbolic factorization is computed once — exactly the shooting
/// engines' steady state.
void BM_MonodromyParallel(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  const RingOrbitFixture& fx = ringOrbitFixture(stages);
  ThreadPool pool(jobs);
  PssOptions opt;
  opt.stepsPerPeriod = 180;
  opt.solver = LinearSolverKind::kSparse;
  opt.pool = jobs > 1 ? &pool : nullptr;  // jobs=1: the plain serial path
  PssWorkspace ws;
  for (auto _ : state) {
    RealVector x = fx.x0;
    const RealMatrix phi = integrateMonodromy(
        *fx.sys, x, 0.0, fx.period, opt.stepsPerPeriod, opt, ws);
    benchmark::DoNotOptimize(phi);
  }
  state.counters["unknowns"] = static_cast<double>(fx.sys->size());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_MonodromyParallel)
    ->Args({15, 1})
    ->Args({15, 4})
    ->Args({63, 1})
    ->Args({63, 2})
    ->Args({63, 4})
    ->Unit(benchmark::kMillisecond);

/// The multi-process sharded sweep: seeded mismatch transients on an RC
/// divider shipped to worker processes over the framed IPC. This bench
/// links google-benchmark's main, so the workers are the sibling
/// psmn_sweep_worker binary (built unconditionally next to this one).
void BM_SweepProcs(benchmark::State& state) {
  const auto scenarios_n = static_cast<size_t>(state.range(0));
  const auto procs = static_cast<size_t>(state.range(1));
  static const char* kDeck = R"(* bench mismatch deck
v1 top 0 pulse(0 2 1n 0.5n 0.5n 6n 20n)
r1 top mid 1k sigma=10
r2 mid 0 1k sigma=10
c1 mid 0 1p
)";
  const std::vector<std::string> decks = {kDeck};
  std::vector<ProcessScenario> scenarios;
  for (size_t k = 0; k < scenarios_n; ++k) {
    ProcessScenario ps;
    ps.name = "mc" + std::to_string(k);
    ps.analysis = SweepAnalysis::kTransient;
    ps.outNode = "mid";
    ps.t1 = 40e-9;
    ps.dt = 0.1e-9;
    ps.tran.storeStates = false;
    ps.applyMismatch = true;
    ps.seed = 1;
    ps.sampleIndex = k;
    scenarios.push_back(std::move(ps));
  }
  ProcessSweepOptions opt;
  opt.procs = procs;
  opt.jobsPerWorker = 1;
  const std::string self = selfExecutablePath();
  opt.workerExe =
      self.substr(0, self.find_last_of('/') + 1) + "psmn_sweep_worker";
  for (auto _ : state) {
    const auto results = runProcessSweep(decks, scenarios, opt);
    for (const auto& r : results) {
      if (!r.ok) state.SkipWithError(r.error.c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios_n);
  state.counters["procs"] = static_cast<double>(procs);
}
BENCHMARK(BM_SweepProcs)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

/// Mismatch-sweep fixtures for the batched-evaluation benchmarks: the
/// MOSFET inverter chain and the BJT op-amp follower, each with a short
/// transient window so the per-scenario setup the batch amortizes (netlist
/// build, finalize, MnaSystem, symbolic pattern) is a realistic fraction
/// of the work — the regime `--sweep mc:N` runs in.
BatchSweepSpec batchBenchSpec(int fixture, size_t count) {
  BatchSweepSpec spec;
  if (fixture == 0) {
    spec.make = [] { return makeChain(8, 1, 4e-15); };
    spec.outNode = "ch8";
    spec.t1 = 0.4e-9;
    spec.dt = 20e-12;
  } else {
    spec.make = [] {
      auto nl = std::make_unique<Netlist>();
      BjtFollowerOptions fopt;
      fopt.tStep = 1e-9;
      fopt.tEdge = 0.5e-9;
      fopt.cLoad = 10e-12;
      buildBjtFollower(*nl, BjtKit::bipolar5(), fopt);
      return nl;
    };
    spec.outNode = "out";
    spec.t1 = 4e-9;
    spec.dt = 0.1e-9;
  }
  spec.configure = [](Netlist& nl, size_t k) {
    applyMismatchSample(nl.mismatchParams(), nullptr, /*seed=*/1, k);
  };
  spec.count = count;
  spec.tran.storeStates = false;
  spec.batch.enabled = true;
  spec.batch.lanes = 16;
  return spec;
}

/// Scenario-batched sweep vs the scalar oracle on the same mismatch draws:
///   BM_BatchEval/<fixture>/<N>/<batched>  fixture 0 = MOSFET chain,
///   1 = BJT op-amp follower; batched 0 runs runScenarioSweep (the exact
///   delegation-target scenarios), 1 runs runScenarioSweepBatched.
///
/// What the pairwise ratio measures: results are pinned bit-identical to
/// the scalar oracle (tests/test_batch_eval.cpp), so the batched path
/// performs the same per-lane Newton math — what it amortizes is the
/// per-scenario *structure*: netlist build + finalize + MnaSystem, the
/// symbolic pattern (built once per tile, copied to the other lanes), and
/// the device-walk dispatch (one structural walk per iteration instead of
/// N). On these compute-bound fixtures that structure is a few percent of
/// a scenario (the chain spends ~1.7us per Newton iteration on model math
/// + dense factor), so on the 1-core container the ratio pins the batch's
/// *overhead* — batched=1 must not run materially slower than batched=0 —
/// exactly as the sweep-scaling baselines pin the pool's. The headline
/// win grows with the setup:stepping ratio (short windows, large N, deck
/// parsing in the CLI) and with lane-vectorizable device mixes.
void BM_BatchEval(benchmark::State& state) {
  const int fixture = static_cast<int>(state.range(0));
  const auto n = static_cast<size_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const BatchSweepSpec spec = batchBenchSpec(fixture, n);
  std::vector<SweepScenario> scenarios;
  if (!batched) {
    for (size_t k = 0; k < n; ++k) {
      SweepScenario sc;
      sc.name = spec.namePrefix + std::to_string(k);
      sc.make = [make = spec.make, configure = spec.configure, k] {
        auto nl = make();
        nl->finalize();
        configure(*nl, k);
        return nl;
      };
      sc.analysis = SweepAnalysis::kTransient;
      sc.outNode = spec.outNode;
      sc.t1 = spec.t1;
      sc.dt = spec.dt;
      sc.tran = spec.tran;
      scenarios.push_back(std::move(sc));
    }
  }
  ThreadPool pool(1);
  for (auto _ : state) {
    const auto results = batched ? runScenarioSweepBatched(spec, pool)
                                 : runScenarioSweep(scenarios, pool);
    for (const auto& r : results) {
      if (!r.ok) state.SkipWithError(r.error.c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["scenarios"] = static_cast<double>(n);
  state.counters["batched"] = batched ? 1.0 : 0.0;
}
BENCHMARK(BM_BatchEval)
    ->Args({0, 64, 0})
    ->Args({0, 64, 1})
    ->Args({1, 64, 0})
    ->Args({1, 64, 1})
    ->Unit(benchmark::kMillisecond);

/// Monte Carlo through the engine, scalar vs batched:
///   BM_McBatched/<fixture>/<N>/<batched> — same fixtures as BM_BatchEval.
/// The scalar side is the engine's factory path with an opaque
/// runTransient measurement; the batched side declares the equivalent
/// McTransientSpec and flips McOptions::batch. Sample streams are
/// bit-identical (tests/test_batch_eval.cpp); see BM_BatchEval for what
/// the pairwise ratio pins on this container.
void BM_McBatched(benchmark::State& state) {
  const int fixture = static_cast<int>(state.range(0));
  const auto n = static_cast<size_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const BatchSweepSpec spec = batchBenchSpec(fixture, n);

  auto primary = spec.make();
  primary->finalize();
  MnaSystem sys(*primary);
  const int outIdx = primary->nodeIndex(spec.outNode);

  McOptions opt;
  opt.samples = n;
  opt.seed = 1;
  opt.jobs = 1;
  opt.keepSamples = false;
  const Real t1 = spec.t1, dt = spec.dt;
  const TranOptions tran = spec.tran;
  const McMeasure measure = [&, outIdx](const MnaSystem& s) {
    const TransientResult tr = runTransient(s, 0.0, t1, dt, tran);
    return RealVector{tr.finalState.at(outIdx)};
  };
  if (batched) {
    opt.batch.enabled = true;
    opt.batch.lanes = 16;
  }
  MonteCarloEngine engine(sys, opt);
  engine.setNetlistFactory(spec.make);
  if (batched) {
    McTransientSpec mspec;
    mspec.t1 = t1;
    mspec.dt = dt;
    mspec.tran = tran;
    mspec.measure = [outIdx](const Netlist&, const TransientResult& tr) {
      return RealVector{tr.finalState.at(outIdx)};
    };
    engine.setTransientMeasurement(std::move(mspec));
  }
  for (auto _ : state) {
    const McResult res = engine.run({"vout"}, measure);
    if (res.failedSamples != 0) state.SkipWithError("samples failed");
    benchmark::DoNotOptimize(res);
  }
  state.counters["samples"] = static_cast<double>(n);
  state.counters["batched"] = batched ? 1.0 : 0.0;
}
BENCHMARK(BM_McBatched)
    ->Args({0, 64, 0})
    ->Args({0, 64, 1})
    ->Args({1, 64, 0})
    ->Args({1, 64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psmn

BENCHMARK_MAIN();
