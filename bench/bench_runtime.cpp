// Parallel-runtime benchmarks: scenario-sweep scaling over threads and the
// parallel multi-RHS sensitivity columns against the serial baseline.
//
//   BM_SweepScaling/<scenarios>/<jobs>       — inverter-chain transient
//       scenarios fanned across the pool.
//   BM_SensitivityParallel/<rows>/<jobs>     — column-partitioned
//       sensitivity recursion (jobs=1 is exactly the serial path:
//       ThreadPool(1) spawns no threads).
//
// Expected shape on a multi-core box (the CI runner): near-linear sweep
// scaling and ≥2x sensitivity speedup at 4 jobs for rows>=8. On a 1-core
// container both flatten to ~1x; what the committed baseline then pins is
// the runtime's *overhead* — jobs>1 must not run materially slower than
// jobs=1. Either way the results are bit-identical across jobs (see
// tests/test_runtime.cpp).
#include <benchmark/benchmark.h>

#include "circuit/stdcell.hpp"
#include "engine/transient_sensitivity.hpp"
#include "runtime/scenario_sweep.hpp"

namespace psmn {
namespace {

std::unique_ptr<Netlist> makeChain(int stages, int rows, Real cLoad) {
  auto nl = std::make_unique<Netlist>();
  InverterChainOptions copt;
  copt.stages = stages;
  copt.rows = rows;
  copt.cLoad = cLoad;
  buildInverterChain(*nl, ProcessKit::cmos130(), copt);
  return nl;
}

/// Transient scenarios over a load-cap corner set on an 8-stage chain.
void BM_SweepScaling(benchmark::State& state) {
  const auto scenarios_n = static_cast<size_t>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  std::vector<SweepScenario> scenarios;
  for (size_t i = 0; i < scenarios_n; ++i) {
    SweepScenario sc;
    sc.name = "corner" + std::to_string(i);
    const Real cLoad = 2e-15 * (i % 8 + 1);
    sc.make = [cLoad] { return makeChain(8, 1, cLoad); };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "ch8";
    sc.t1 = 2e-9;
    sc.dt = 10e-12;
    sc.tran.storeStates = false;
    scenarios.push_back(std::move(sc));
  }
  ThreadPool pool(jobs);
  for (auto _ : state) {
    const auto results = runScenarioSweep(scenarios, pool);
    for (const auto& r : results) {
      if (!r.ok) state.SkipWithError(r.error.c_str());
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios_n);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_SweepScaling)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

/// Column-partitioned transient sensitivity on `rows` 8-stage chains
/// (ns = 32*rows mismatch columns, sparse backend above 40 unknowns).
void BM_SensitivityParallel(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const auto jobs = static_cast<size_t>(state.range(1));
  auto nl = makeChain(8, rows, 5e-15);
  nl->finalize();
  MnaSystem sys(*nl);
  const auto sources = sys.collectSources(true, false);

  ThreadPool pool(jobs);
  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.pool = jobs > 1 ? &pool : nullptr;  // jobs=1: the plain serial path
  for (auto _ : state) {
    const auto res =
        runTransientSensitivity(sys, 0.0, 1e-9, 10e-12, sources, opt);
    benchmark::DoNotOptimize(res);
  }
  state.counters["unknowns"] = static_cast<double>(sys.size());
  state.counters["sources"] = static_cast<double>(sources.size());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_SensitivityParallel)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psmn

BENCHMARK_MAIN();
