// Paper Table I: estimated correlations between the delay variations at
// outputs A and B of the Fig. 7 logic path.
//
// Case 1 (X rises first): both critical paths run through the shared gates
// a and b -> strong correlation (paper: rho = 0.885).
// Case 2 (Y rises first): the paths are disjoint -> rho ~ 0 (paper: 0.01).
// Both cases are checked against Monte-Carlo sample correlations, and the
// eq. 13 difference-variance (the DNL-style combination of SS V-D) is
// validated as well.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/correlation.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"

using namespace psmn;
using namespace psmn::benchutil;

namespace {

void runCase(bool xFirst, size_t samples) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  LogicPathOptions lo;
  lo.tRiseX = xFirst ? 1e-9 : 2.5e-9;
  lo.tRiseY = xFirst ? 2.5e-9 : 1e-9;
  const auto lp = buildLogicPath(nl, kit, lo);
  MnaSystem sys(nl);
  const int aIdx = nl.nodeIndex(lp.outA);
  const int bIdx = nl.nodeIndex(lp.outB);
  const Real half = kit.vdd / 2;

  Stopwatch sw;
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 800;
  opt.pss.warmupCycles = 2;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(lp.period);
  const VariationResult dA = an.edgeDelayVariation(aIdx, half, -1);
  const VariationResult dB = an.edgeDelayVariation(bIdx, half, -1);
  const Real rho = correlationOf(dA, dB);
  const Real sDiff = std::sqrt(differenceVariance(dA, dB));
  const double tPn = sw.seconds();

  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    const TransientResult tr =
        runTransient(s, 0.0, lp.period, lp.period / 800, topt);
    const Waveform win =
        makeWaveform(tr.times, tr.states, nl.nodeIndex(xFirst ? lp.y : lp.x));
    const Waveform wa = makeWaveform(tr.times, tr.states, aIdx);
    const Waveform wb = makeWaveform(tr.times, tr.states, bIdx);
    return {measureDelay(win, wa, half, +1, -1),
            measureDelay(win, wb, half, +1, -1)};
  };
  McOptions mo;
  mo.samples = samples;
  const McResult mc = MonteCarloEngine(sys, mo).run({"dA", "dB"}, measure);
  // MC sigma of the difference, measured directly from the samples.
  MomentAccumulator diff;
  for (const auto& row : mc.samples) diff.add(row[1] - row[0]);

  std::printf("%s (paper: rho ~ %s)\n", xFirst
              ? "case 1: X rises first -> paths share gates a,b"
              : "case 2: Y rises first -> disjoint paths",
              xFirst ? "0.885" : "0.01");
  std::printf("  pseudo-noise: sigmaA=%6.3fps sigmaB=%6.3fps rho=%+6.3f "
              "sigma(B-A)=%6.3fps  [%.2fs]\n",
              1e12 * dA.sigma(), 1e12 * dB.sigma(), rho, 1e12 * sDiff, tPn);
  std::printf("  MC-%-9zu sigmaA=%6.3fps sigmaB=%6.3fps rho=%+6.3f "
              "sigma(B-A)=%6.3fps  [%.1fs]\n",
              samples, 1e12 * mc.sigma(0), 1e12 * mc.sigma(1),
              mc.correlationBetween(0, 1), 1e12 * diff.stddev(),
              mc.elapsedSeconds);

  // Shared-gate contribution breakdown (the mechanism behind Table I).
  const Real sharedA = dA.varianceFromPrefix("Ga") + dA.varianceFromPrefix("Gb");
  const Real sharedB = dB.varianceFromPrefix("Ga") + dB.varianceFromPrefix("Gb");
  std::printf("  shared gates a,b carry %4.1f%% of var(dA), %4.1f%% of "
              "var(dB)\n",
              100.0 * sharedA / dA.variance(), 100.0 * sharedB / dB.variance());
}

}  // namespace

int main() {
  header("Table I: delay-variation correlations on the Fig. 7 logic path");
  const size_t n = scaled(1000);
  runCase(true, n);
  rule();
  runCase(false, n);
  return 0;
}
