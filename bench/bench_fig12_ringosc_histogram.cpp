// Paper Fig. 12: ring-oscillator frequency histogram from Monte-Carlo at
// severe mismatch, against the Gaussian PDF implied by the (linear)
// pseudo-noise analysis.
//
// Paper result at 3sigma(IDS)=44%: the linear analysis underestimates the
// true sigma by 15.9% and the distribution is visibly non-Gaussian. We run
// the near-threshold ring at the severity where our substrate shows the
// same behaviour (see bench_fig11 for the sweep and DESIGN.md for the
// model-linearity substitution note).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "core/pseudo_noise.hpp"
#include "engine/transient.hpp"
#include "meas/histogram.hpp"
#include "meas/measure.hpp"
#include "numeric/statistics.hpp"
#include "rf/pss.hpp"

using namespace psmn;
using namespace psmn::benchutil;

int main() {
  header("Fig. 12: oscillator frequency histogram at severe mismatch");
  const Real scale = 3.5;
  Netlist nl;
  auto kit = ProcessKit::cmos130(scale);
  kit.vdd = 0.7;
  RingOscillatorOptions oo;
  oo.wn = 0.5e-6;
  oo.wp = 1e-6;
  oo.cLoad = 10e-15;
  const auto osc = buildRingOscillator(nl, kit, oo);
  MnaSystem sys(nl);
  const RingWarmup warm = warmupRingOscillator(sys, osc, 60e-9, 20e-12);

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis an(sys, opt);
  an.runAutonomous(warm.periodEstimate, warm.phaseIndex, warm.state);
  const Real f0 = 1.0 / an.pss().period;
  const Real sigmaPn = an.frequencyVariation(warm.phaseIndex).sigma();
  std::printf("severity: 3sig(IDS) ~ %.0f%%  f0 = %.3f GHz  pseudo-noise "
              "sigma_f = %.2f MHz (%.2f%%)\n",
              300.0 * relativeIdsSigma(*kit.nmos, oo.wn, kit.lmin,
                                       kit.vdd - kit.nmos->vt0),
              f0 / 1e9, sigmaPn / 1e6, 100.0 * sigmaPn / f0);

  const size_t samples = scaled(1000);
  const Real dt = an.pss().period / 400;
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions t2;
    t2.method = IntegrationMethod::kBackwardEuler;
    t2.initialState = &warm.state;
    const TransientResult tr =
        runTransient(s, 0.0, 25 * warm.periodEstimate, dt, t2);
    const Waveform w = makeWaveform(tr.times, tr.states, warm.phaseIndex);
    try {
      return {measureFrequency(w, kit.vdd / 2, 8)};
    } catch (const Error& e) {
      throw SampleFailure(e.what());
    }
  };
  McOptions mo;
  mo.samples = samples;
  const McResult mc = MonteCarloEngine(sys, mo).run({"f"}, measure);
  const Real under = 100.0 * (1.0 - sigmaPn / mc.sigma());
  std::printf("monte-carlo (%zu samples, %zu failed): sigma_f = %.2f MHz "
              "(%.2f%%), skewness = %+.3f\n",
              samples, mc.failedSamples, mc.sigma() / 1e6,
              100.0 * mc.sigma() / mc.meanOf(),
              mc.moments[0].normalizedSkewness());
  std::printf("linear analysis underestimates sigma by %.1f%% (paper at "
              "3sig(IDS)=44%%: 15.9%%)\n\n",
              under);

  const Histogram h =
      Histogram::fromSamples(mc.column(0), 31, f0 - 4.0 * mc.sigma(),
                             f0 + 4.0 * mc.sigma());
  std::printf("histogram (#) with linear pseudo-noise Gaussian PDF (*):\n%s\n",
              h.render(56, [&](Real x) {
                 return gaussPdf(x, f0, sigmaPn);
               }).c_str());
  return 0;
}
