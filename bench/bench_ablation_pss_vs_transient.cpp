// Ablation C (paper Fig. 5): shooting-Newton PSS vs brute-force transient
// settling for reaching the comparator testbench's periodic steady state.
//
// The paper's Fig. 5 argument: the pseudo-noise effects only matter on the
// final periodic orbit; a transient noise analysis wastes its effort
// simulating the settling. Here we measure how many clock cycles the
// transient route needs to reach a given periodicity residual |x(T)-x0|
// versus the cycles (integrations) consumed by shooting.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "rf/pss.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

namespace {

Real periodicityResidual(const MnaSystem& sys, const RealVector& x0, Real T,
                         const PssOptions& opt) {
  const RealVector xT = pssWarmup(sys, T, 1, opt, &x0);
  Real r = 0.0;
  for (size_t i = 0; i < x0.size(); ++i) {
    r = std::max(r, std::fabs(xT[i] - x0[i]));
  }
  return r;
}

}  // namespace

int main() {
  header("Ablation C: shooting PSS vs brute-force settling (comparator, "
         "offset testbench)");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const Real T = tb.clkPeriod;
  PssOptions popt;
  popt.stepsPerPeriod = 400;

  // Start from an intentionally bad state: a 3-sigma-ish offset preloaded
  // on the integrator (what a fresh Monte-Carlo sample faces).
  auto* m2 = tb.comp.fet("M2");
  m2->setMismatchDelta(0, 0.02);  // 20 mV input-pair offset

  // Brute-force settling: cycles until |x(T)-x0| < tol. The loop starts
  // at power-up (integrator at vos = 0), which is what a Monte-Carlo
  // sample faces: the DC solve of *this* tamed comparator happens to
  // pre-balance the offset through leakage, a shortcut the paper's
  // strongly regenerative comparator does not offer (see EXPERIMENTS.md).
  Stopwatch swTran;
  RealVector x;
  {
    DcOptions dopt;
    x = solveDc(sys, dopt).x;
    x[tb.vosIndex] = 0.0;
    x = pssWarmup(sys, T, 1, popt, &x);
  }
  const Real tol = 1e-7;
  int cycles = 1;
  Real res = 1.0;
  std::printf("%-28s %14s\n", "transient settling", "|x(T)-x0|");
  for (; cycles < 400; ++cycles) {
    const RealVector xNext = pssWarmup(sys, T, 1, popt, &x);
    res = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      res = std::max(res, std::fabs(xNext[i] - x[i]));
    }
    x = xNext;
    if (cycles % 25 == 0 || res < tol) {
      std::printf("  after %4d cycles          %14s\n", cycles,
                  formatEng(res, 3).c_str());
    }
    if (res < tol) break;
  }
  const double tTran = swTran.seconds();

  // Shooting from a short warmup.
  Stopwatch swShoot;
  PssOptions sopt = popt;
  sopt.warmupCycles = 5;
  sopt.shootingTol = tol;
  const PssResult pss = solvePssDriven(sys, T, sopt);
  const double tShoot = swShoot.seconds();
  const Real shootRes = periodicityResidual(sys, pss.states[0], T, popt);
  m2->setMismatchDelta(0, 0.0);

  rule();
  std::printf("transient: %4d cycles, %6.2fs to reach |x(T)-x0| < %s\n",
              cycles, tTran, formatEng(tol, 1).c_str());
  std::printf("shooting:  %4d warmup cycles + %d Newton iterations "
              "(1 period-integration each),\n           %6.2fs, final "
              "residual %s\n",
              sopt.warmupCycles, pss.shootingIterations, tShoot,
              formatEng(shootRes, 2).c_str());
  std::printf("cycle-count advantage: %.1fx   wall-clock advantage: %.1fx\n",
              static_cast<double>(cycles) /
                  (sopt.warmupCycles + pss.shootingIterations + 1),
              tTran / tShoot);
  std::printf("\n(Each Monte-Carlo sample pays the transient column; the "
              "pseudo-noise analysis\npays the shooting column once — the "
              "core of the paper's Table II speedup.)\n");
  return 0;
}
