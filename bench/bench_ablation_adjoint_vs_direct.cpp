// Ablation B: direct vs adjoint LPTV noise analysis.
//
// The paper leans on the per-source contribution breakdown being free
// (SS V: "the simulator does not need to perform any additional
// simulation"). This bench verifies the adjoint and direct solvers agree
// to solver precision on the comparator testbench and compares their cost
// as the number of outputs/sidebands of interest varies: the direct method
// prices *all outputs* at once, the adjoint prices *all sources* for one
// (output, sideband) functional.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "rf/pnoise.hpp"
#include "rf/pss.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

int main() {
  header("Ablation B: adjoint vs direct LPTV noise on the comparator");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);

  PssOptions popt;
  popt.stepsPerPeriod = 400;
  popt.warmupCycles = 40;
  Stopwatch swPss;
  const PssResult pss = solvePssDriven(sys, tb.clkPeriod, popt);
  std::printf("PSS: %d shooting iterations, %.2fs\n", pss.shootingIterations,
              swPss.seconds());

  PnoiseAnalysis pn(sys, pss, PnoiseOptions{});
  Stopwatch swDir;
  pn.run();
  const PnoiseSideband direct = pn.sideband(tb.vosIndex, 0);
  const double tDirect = swDir.seconds();

  Stopwatch swAdj;
  const PnoiseSideband adjoint = pn.sidebandAdjoint(tb.vosIndex, 0);
  const double tAdjoint = swAdj.seconds();

  Real maxDev = 0.0;
  for (size_t i = 0; i < direct.transfer.size(); ++i) {
    maxDev = std::max(maxDev, std::abs(direct.transfer[i] -
                                       adjoint.transfer[i]));
  }
  std::printf("\n%zu sources; total PSD at baseband/1Hz:\n", pn.sources().size());
  std::printf("  direct : %s V^2/Hz  [%.3fs for all %zu outputs]\n",
              formatEng(direct.totalPsd, 6).c_str(), tDirect, sys.size());
  std::printf("  adjoint: %s V^2/Hz  [%.3fs for one output functional]\n",
              formatEng(adjoint.totalPsd, 6).c_str(), tAdjoint);
  std::printf("  max |transfer difference| = %s (solver precision)\n",
              formatEng(maxDev, 2).c_str());

  // The breakdown really is free: re-reading different outputs/sidebands
  // from the direct solution costs microseconds.
  Stopwatch swRead;
  Real checksum = 0.0;
  const int outs[3] = {tb.vosIndex, nl.nodeIndex(tb.comp.outp),
                       nl.nodeIndex(tb.comp.xp)};
  for (int out : outs) {
    for (int harmonic : {0, 1, 2}) {
      checksum += pn.sideband(out, harmonic).totalPsd;
    }
  }
  std::printf("\n9 additional (output, sideband) readouts from the same "
              "solve: %.4fs (checksum %s)\n",
              swRead.seconds(), formatEng(checksum, 3).c_str());
  std::printf("=> correlations between any pair of measurements (eq. 12) "
              "come at zero extra\nsimulation cost, as the paper claims.\n");
  return 0;
}
