// Paper Table II: benchmark summary.
//
// For each of the three benchmark circuits — clocked-comparator input
// offset, logic-path delay, ring-oscillator frequency — this bench runs
//   (a) the pseudo-noise sensitivity analysis (PSS + LPTV noise at 1 Hz),
//   (b) Monte-Carlo with N samples (N=1000 by default; PSMN_MC_SCALE
//       rescales),
// and prints sigma from both, the agreement, the wall-clock times, and the
// speedup (including the projection to a 10000-point MC, which is what the
// paper's 100-1000x headline compares against).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "numeric/statistics.hpp"
#include "rf/pss.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

namespace {

struct Row {
  std::string name;
  std::string unit;
  Real sigmaPn = 0.0;
  double timePn = 0.0;
  Real sigmaMc = 0.0;
  double timeMc = 0.0;
  size_t mcSamples = 0;
  size_t mcFailed = 0;
};

void printRow(const Row& r) {
  const double perSample = r.timeMc / static_cast<double>(r.mcSamples);
  const double mc1k = perSample * 1000.0;
  const double mc10k = perSample * 10000.0;
  std::printf("%-22s sigma=%8s%s  t=%7.2fs |", r.name.c_str(),
              formatEng(r.sigmaPn, 3).c_str(), r.unit.c_str(), r.timePn);
  std::printf(" MC-%zu: sigma=%8s%s t=%7.1fs", r.mcSamples,
              formatEng(r.sigmaMc, 3).c_str(), r.unit.c_str(), r.timeMc);
  if (r.mcFailed > 0) std::printf(" (%zu failed)", r.mcFailed);
  std::printf("\n%-22s ratio(pn/mc)=%.3f   speedup vs MC-1k: %.0fx   vs "
              "MC-10k: %.0fx\n",
              "", r.sigmaPn / r.sigmaMc, mc1k / r.timePn, mc10k / r.timePn);
}

Row benchComparator(size_t samples) {
  Row row;
  row.name = "comparator offset";
  row.unit = "V";
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const Real T = tb.clkPeriod;

  {
    Stopwatch sw;
    MismatchAnalysisOptions opt;
    opt.pss.stepsPerPeriod = 400;
    opt.pss.warmupCycles = 40;
    TransientMismatchAnalysis an(sys, opt);
    an.runDriven(T);
    row.sigmaPn = an.dcVariation(tb.vosIndex).sigma();
    row.timePn = sw.seconds();
  }

  // Each sample integrates the testbench from power-up (vos = 0) until
  // the offset loop settles — the paper's "long transient" cost. Settling
  // is detected in 10-cycle blocks.
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    topt.storeStates = false;
    RealVector x = solveDc(s, {}).x;
    x[tb.vosIndex] = 0.0;
    Real prev = 1e9;
    TranOptions t2 = topt;
    for (int block = 0; block < 30; ++block) {
      t2.initialState = &x;
      const TransientResult tr = runTransient(s, 0.0, 10 * T, T / 100, t2);
      x = tr.finalState;
      if (std::fabs(x[tb.vosIndex] - prev) < 1e-4) break;
      prev = x[tb.vosIndex];
    }
    return {x[tb.vosIndex]};
  };
  McOptions mo;
  mo.samples = samples;
  mo.keepSamples = false;
  const McResult mc = MonteCarloEngine(sys, mo).run({"vos"}, measure);
  row.sigmaMc = mc.sigma();
  row.timeMc = mc.elapsedSeconds;
  row.mcSamples = samples;
  row.mcFailed = mc.failedSamples;
  return row;
}

Row benchLogicPath(size_t samples) {
  Row row;
  row.name = "logic-path delay";
  row.unit = "s";
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto lp = buildLogicPath(nl, kit, {});
  MnaSystem sys(nl);
  const int aIdx = sys.netlist().nodeIndex(lp.outA);
  const Real half = kit.vdd / 2;

  {
    Stopwatch sw;
    MismatchAnalysisOptions opt;
    opt.pss.stepsPerPeriod = 800;
    opt.pss.warmupCycles = 2;
    TransientMismatchAnalysis an(sys, opt);
    an.runDriven(lp.period);
    row.sigmaPn = an.edgeDelayVariation(aIdx, half, -1).sigma();
    row.timePn = sw.seconds();
  }

  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    const TransientResult tr =
        runTransient(s, 0.0, lp.period, lp.period / 800, topt);
    const Waveform wy =
        makeWaveform(tr.times, tr.states, s.netlist().nodeIndex(lp.y));
    const Waveform wa = makeWaveform(tr.times, tr.states, aIdx);
    return {measureDelay(wy, wa, half, +1, -1)};
  };
  McOptions mo;
  mo.samples = samples;
  mo.keepSamples = false;
  const McResult mc = MonteCarloEngine(sys, mo).run({"delay"}, measure);
  row.sigmaMc = mc.sigma();
  row.timeMc = mc.elapsedSeconds;
  row.mcSamples = samples;
  row.mcFailed = mc.failedSamples;
  return row;
}

Row benchRingOscillator(size_t samples) {
  Row row;
  row.name = "oscillator frequency";
  row.unit = "Hz";
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  const RingWarmup warm = warmupRingOscillator(sys, osc);

  Real period = 0.0;
  {
    Stopwatch sw;
    MismatchAnalysisOptions opt;
    opt.pss.stepsPerPeriod = 400;
    TransientMismatchAnalysis an(sys, opt);
    an.runAutonomous(warm.periodEstimate, warm.phaseIndex, warm.state);
    row.sigmaPn = an.frequencyVariation(warm.phaseIndex).sigma();
    row.timePn = sw.seconds();
    period = an.pss().period;
  }

  const Real dt = period / 400;
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions t2;
    t2.method = IntegrationMethod::kBackwardEuler;
    t2.initialState = &warm.state;
    const TransientResult tr = runTransient(s, 0.0, 20 * period, dt, t2);
    const Waveform w = makeWaveform(tr.times, tr.states, warm.phaseIndex);
    try {
      return {measureFrequency(w, 0.6, 6)};
    } catch (const Error& e) {
      throw SampleFailure(e.what());
    }
  };
  McOptions mo;
  mo.samples = samples;
  mo.keepSamples = false;
  const McResult mc = MonteCarloEngine(sys, mo).run({"f"}, measure);
  row.sigmaMc = mc.sigma();
  row.timeMc = mc.elapsedSeconds;
  row.mcSamples = samples;
  row.mcFailed = mc.failedSamples;
  return row;
}

}  // namespace

int main() {
  header("Table II: benchmark summary (pseudo-noise vs Monte-Carlo)");
  std::printf("MC confidence (95%%): +-%.1f%% at N=1000, +-%.1f%% at "
              "N=10000 (paper SS VI)\n",
              100.0 * sigmaConfidence95(1000), 100.0 * sigmaConfidence95(10000));
  rule();
  printRow(benchLogicPath(scaled(1000)));
  rule();
  printRow(benchRingOscillator(scaled(1000)));
  rule();
  printRow(benchComparator(scaled(1000)));
  rule();
  std::printf("Paper's shape: matching sigma, 100-1000x speedup, largest "
              "for the comparator\n(long settling per MC sample).\n");
  return 0;
}
