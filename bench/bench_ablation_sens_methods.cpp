// Ablation A (paper SS IV, Fig. 5): three routes to the same mismatch
// sensitivities, compared for agreement and cost.
//
//   1. LPTV pseudo-noise analysis on the PSS (the paper's method),
//   2. direct transient sensitivity analysis (Hocevar-style, the paper's
//      "expensive alternative": cost grows with #parameters and with the
//      simulated time span),
//   3. brute-force finite differences (2 transients per parameter).
//
// Measured on the logic path's falling-edge delay at output A, and — for
// the oscillator — pseudo-noise eq. 9 vs the discrete-adjoint PPV.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "meas/measure.hpp"
#include "rf/ppv.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

int main() {
  header("Ablation A: LPTV pseudo-noise vs transient sensitivity vs finite "
         "differences");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto lp = buildLogicPath(nl, kit, {});
  MnaSystem sys(nl);
  const int aIdx = nl.nodeIndex(lp.outA);
  const Real half = kit.vdd / 2;
  const auto sources = sys.collectSources(true, false);
  std::printf("logic path: %zu mismatch parameters\n\n", sources.size());

  // 1. LPTV (the paper's method).
  Stopwatch sw1;
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 800;
  opt.pss.warmupCycles = 2;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(lp.period);
  const VariationResult lptv = an.edgeDelayVariation(aIdx, half, -1);
  const double tLptv = sw1.seconds();

  // 2. Direct transient sensitivity (all parameters in one sweep, but cost
  //    scales with #parameters and the full time span must be simulated).
  Stopwatch sw2;
  const TransientSensitivityResult ts = runTransientSensitivity(
      sys, 0.0, lp.period, lp.period / 800, sources, {});
  RealVector tranSens(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    tranSens[i] = ts.crossingTimeSensitivity(i, aIdx, half, -1) *
                  sources[i].sigma;
  }
  const double tTran = sw2.seconds();

  // 3. Finite differences (2 transients per parameter).
  Stopwatch sw3;
  auto delayOnce = [&]() {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    const TransientResult tr =
        runTransient(sys, 0.0, lp.period, lp.period / 800, topt);
    const Waveform wy = makeWaveform(tr.times, tr.states, nl.nodeIndex(lp.y));
    const Waveform wa = makeWaveform(tr.times, tr.states, aIdx);
    return measureDelay(wy, wa, half, +1, -1);
  };
  RealVector fdSens(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    Device* dev = sources[i].components[0].device;
    const size_t k = sources[i].components[0].index;
    const Real h = 0.2 * sources[i].sigma;
    dev->setMismatchDelta(k, h);
    const Real dp = delayOnce();
    dev->setMismatchDelta(k, -h);
    const Real dm = delayOnce();
    dev->setMismatchDelta(k, 0.0);
    fdSens[i] = (dp - dm) / (2.0 * h) * sources[i].sigma;
  }
  const double tFd = sw3.seconds();

  // Agreement per parameter (scaled sensitivities, in ps).
  std::printf("%-12s %12s %12s %12s\n", "param", "LPTV (ps)", "tran-sens",
              "finite-diff");
  Real var1 = 0, var2 = 0, var3 = 0, maxRel = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    var1 += lptv.scaledSens[i] * lptv.scaledSens[i];
    var2 += tranSens[i] * tranSens[i];
    var3 += fdSens[i] * fdSens[i];
    if (std::fabs(fdSens[i]) > 0.05e-12) {
      maxRel = std::max(maxRel,
                        std::fabs(lptv.scaledSens[i] - fdSens[i]) /
                            std::fabs(fdSens[i]));
    }
    if (i < 6 || std::fabs(fdSens[i]) > 0.3e-12) {
      std::printf("%-12s %+12.4f %+12.4f %+12.4f\n",
                  lptv.sourceNames[i].c_str(), 1e12 * lptv.scaledSens[i],
                  1e12 * tranSens[i], 1e12 * fdSens[i]);
    }
  }
  rule();
  std::printf("sigma(delay):   %8.4f ps   %8.4f ps   %8.4f ps\n",
              1e12 * std::sqrt(var1), 1e12 * std::sqrt(var2),
              1e12 * std::sqrt(var3));
  std::printf("wall clock:     %8.2f s    %8.2f s    %8.2f s\n", tLptv, tTran,
              tFd);
  std::printf("max |LPTV-FD|/|FD| over significant params: %.1f%%\n",
              100.0 * maxRel);
  std::printf("\nNote the paper's point (SS IV): the LPTV route pays one PSS "
              "+ one linear solve\nindependent of the settling time; the "
              "transient-sensitivity and FD routes scale\nwith the simulated "
              "span and (for FD) with 2x the parameter count.\n");

  // Oscillator: eq. 9 vs discrete-adjoint PPV.
  rule();
  std::printf("oscillator frequency sensitivities: LPTV eq. 9 vs "
              "discrete-adjoint PPV\n");
  Netlist nlo;
  auto kit2 = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nlo, kit2);
  MnaSystem syso(nlo);
  const RingWarmup warm = warmupRingOscillator(syso, osc);
  MismatchAnalysisOptions oopt;
  oopt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis ano(syso, oopt);
  Stopwatch swo;
  ano.runAutonomous(warm.periodEstimate, warm.phaseIndex, warm.state);
  const VariationResult fv = ano.frequencyVariation(warm.phaseIndex);
  const double tOscLptv = swo.seconds();
  Stopwatch swp;
  const PpvResult ppv = computePpv(syso, ano.pss());
  const auto oSources = syso.collectSources(true, false);
  Real varPpv = 0.0, maxRelOsc = 0.0;
  for (size_t i = 0; i < oSources.size(); ++i) {
    const Real s = ppv.frequencySensitivity(syso, ano.pss(), oSources[i]) *
                   oSources[i].sigma;
    varPpv += s * s;
    if (std::fabs(fv.scaledSens[i]) > 1e5) {
      maxRelOsc = std::max(maxRelOsc, std::fabs(s - fv.scaledSens[i]) /
                                          std::fabs(fv.scaledSens[i]));
    }
  }
  const double tPpv = swp.seconds();
  std::printf("  sigma_f: eq.9 = %s Hz [%.2fs incl. PSS]   PPV = %s Hz "
              "[+%.2fs]   max param dev %.2f%%\n",
              formatEng(fv.sigma(), 4).c_str(), tOscLptv,
              formatEng(std::sqrt(varPpv), 4).c_str(), tPpv,
              100.0 * maxRelOsc);
  return 0;
}
