// Paper Fig. 11: error of the pseudo-noise sigma estimate and the
// normalized skewness of the Monte-Carlo distribution versus the amount of
// transistor mismatch, for the ring-oscillator frequency.
//
// Substitution note (see DESIGN.md): our smoothed square-law MOSFET is
// more linear than the paper's foundry BSIM models, so the error crosses
// 10% at a larger 3sigma(IDS) than the paper's 39%. To exercise the
// nonlinear regime we run a near-threshold ring (VDD = 0.7 V, small
// devices) and sweep the Pelgrom constants; the paper's qualitative shape
// — |error| growing with mismatch while the distribution skews away from
// Gaussian — is what this bench regenerates.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "core/pseudo_noise.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "rf/pss.hpp"

using namespace psmn;
using namespace psmn::benchutil;

namespace {

struct Point {
  Real sigma3Ids;
  Real sigmaPnRel;
  Real sigmaMcRel;
  Real errorPct;
  Real skewness;
  size_t failed;
};

Point runPoint(Real scale, size_t samples) {
  Netlist nl;
  auto kit = ProcessKit::cmos130(scale);
  kit.vdd = 0.7;
  RingOscillatorOptions oo;
  oo.wn = 0.5e-6;
  oo.wp = 1e-6;
  oo.cLoad = 10e-15;
  const auto osc = buildRingOscillator(nl, kit, oo);
  MnaSystem sys(nl);
  const RingWarmup warm = warmupRingOscillator(sys, osc, 60e-9, 20e-12);

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis an(sys, opt);
  an.runAutonomous(warm.periodEstimate, warm.phaseIndex, warm.state);
  const Real f0 = 1.0 / an.pss().period;
  const Real sigmaPn = an.frequencyVariation(warm.phaseIndex).sigma();

  const Real dt = an.pss().period / 400;
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions t2;
    t2.method = IntegrationMethod::kBackwardEuler;
    t2.initialState = &warm.state;
    const TransientResult tr =
        runTransient(s, 0.0, 25 * warm.periodEstimate, dt, t2);
    const Waveform w = makeWaveform(tr.times, tr.states, warm.phaseIndex);
    try {
      return {measureFrequency(w, kit.vdd / 2, 8)};
    } catch (const Error& e) {
      throw SampleFailure(e.what());
    }
  };
  McOptions mo;
  mo.samples = samples;
  mo.keepSamples = false;
  const McResult mc = MonteCarloEngine(sys, mo).run({"f"}, measure);

  Point p;
  // Report the severity on the paper's x-axis: relative IDS sigma of the
  // switching devices at their on-state overdrive.
  p.sigma3Ids = 3.0 * relativeIdsSigma(*kit.nmos, oo.wn, kit.lmin,
                                       kit.vdd - kit.nmos->vt0);
  p.sigmaPnRel = sigmaPn / f0;
  p.sigmaMcRel = mc.sigma() / mc.meanOf();
  p.errorPct = 100.0 * (p.sigmaPnRel / p.sigmaMcRel - 1.0);
  p.skewness = mc.moments[0].normalizedSkewness();
  p.failed = mc.failedSamples;
  return p;
}

}  // namespace

int main() {
  header("Fig. 11: sigma-estimation error and skewness vs mismatch "
         "severity (near-threshold ring oscillator)");
  const size_t samples = scaled(500);
  std::printf("%10s %12s %12s %10s %10s %8s\n", "3sig(IDS)", "sigma_pn/f0",
              "sigma_mc/f0", "error", "skewness", "failed");
  for (Real scale : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    const Point p = runPoint(scale, samples);
    std::printf("%9.1f%% %11.3f%% %11.3f%% %+9.1f%% %+10.3f %8zu\n",
                100.0 * p.sigma3Ids, 100.0 * p.sigmaPnRel,
                100.0 * p.sigmaMcRel, p.errorPct, p.skewness, p.failed);
  }
  rule();
  std::printf("Paper's shape: the linear pseudo-noise estimate degrades and "
              "the distribution\nskews as mismatch grows (their 10%% error "
              "point: 3sig(IDS)=39%% on BSIM;\nthe square-law substrate is "
              "more linear, shifting the crossover right).\n");
  return 0;
}
