// Paper Fig. 10: sensitivity of the comparator input-offset variation to
// each transistor width, from the pseudo-noise contribution breakdown and
// the Pelgrom chain rule (eq. 14-16) — no additional simulations.
//
// The paper's finding: the input pair M2-M3 dominates, so upsizing it is
// the most effective way to reduce the offset variation. We additionally
// cross-check eq. 16 against brute-force finite differences (re-running
// the whole PSS+PNOISE flow with W perturbed) for selected devices, which
// also quantifies the nominal-operating-point shift that eq. 16 neglects.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/design_sensitivity.hpp"
#include "core/mismatch_analysis.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

namespace {

Real offsetVarianceWithWidths(const ComparatorTestbenchOptions& opt) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit, opt);
  MnaSystem sys(nl);
  MismatchAnalysisOptions mopt;
  mopt.pss.stepsPerPeriod = 400;
  mopt.pss.warmupCycles = 40;
  TransientMismatchAnalysis an(sys, mopt);
  an.runDriven(tb.clkPeriod);
  return an.dcVariation(tb.vosIndex).variance();
}

}  // namespace

int main() {
  header("Fig. 10: offset-variation sensitivity to transistor widths");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);

  Stopwatch sw;
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  opt.pss.warmupCycles = 40;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(tb.clkPeriod);
  const VariationResult v = an.dcVariation(tb.vosIndex);
  const auto ws = widthSensitivities(nl, v);
  std::printf("sigma(VOS) = %s V; per-device breakdown and eq. 16 width "
              "sensitivities [%.2fs, zero extra sims]:\n\n",
              formatEng(v.sigma(), 4).c_str(), sw.seconds());
  std::printf("%-5s %8s %14s %18s %10s\n", "dev", "W(um)", "share of var",
              "dVar/dW (V^2/m)", "impact");
  for (const auto& w : ws) {
    std::printf("%-5s %8.2f %13.1f%% %18s %9.1f%% %s\n", w.device.c_str(),
                1e6 * w.width, 100.0 * w.relativeImpact,
                formatEng(w.dVarianceDWidth, 3).c_str(),
                100.0 * w.relativeImpact,
                w.relativeImpact > 0.25 ? "<== dominant" : "");
  }

  // Paper claim: input pair dominates.
  Real inputShare = 0.0;
  for (const auto& w : ws) {
    if (w.device == "M2" || w.device == "M3") inputShare += w.relativeImpact;
  }
  std::printf("\ninput pair M2+M3 share: %.1f%% (paper: input transistors "
              "dominate)\n",
              100.0 * inputShare);

  // Finite-difference verification of eq. 16 on two devices: perturb both
  // matched widths together to preserve symmetry.
  rule();
  std::printf("eq. 16 vs finite difference (re-running the full analysis "
              "with W' = 1.2 W):\n");
  const Real var0 = v.variance();
  struct Probe {
    const char* name;
    Real ComparatorOptions::*field;
  };
  const Probe probes[] = {{"M2+M3 (input pair)", &ComparatorOptions::wInput},
                          {"M8..M11 (precharge)", &ComparatorOptions::wPre}};
  for (const auto& p : probes) {
    ComparatorTestbenchOptions tbo;
    const Real w0 = tbo.comparator.*(p.field);
    tbo.comparator.*(p.field) = 1.2 * w0;
    const Real varP = offsetVarianceWithWidths(tbo);
    // eq. 16 prediction, summed over the devices that share this width.
    Real predicted = 0.0;
    for (const auto& w : ws) {
      const bool isInput = (w.device == "M2" || w.device == "M3");
      const bool isPre = (w.device == "M8" || w.device == "M9" ||
                          w.device == "M10" || w.device == "M11");
      if ((p.field == &ComparatorOptions::wInput && isInput) ||
          (p.field == &ComparatorOptions::wPre && isPre)) {
        predicted += w.dVarianceDWidth * 0.2 * w0;
      }
    }
    std::printf("  %-20s dVar: eq16=%10s  FD=%10s  (ratio %.2f)\n", p.name,
                formatEng(predicted, 3).c_str(),
                formatEng(varP - var0, 3).c_str(),
                predicted != 0.0 ? (varP - var0) / predicted : 0.0);
  }
  std::printf("\n(eq. 16 deliberately ignores the change of the nominal\n"
              "operating point with W — the FD column shows how good that\n"
              "approximation is on each device class.)\n");
  return 0;
}
