// Shared helpers for the paper-reproduction benches.
//
// Every bench runs standalone with defaults sized for a few minutes total
// across the suite. The environment variable PSMN_MC_SCALE (e.g. 0.1 or 4)
// multiplies all Monte-Carlo sample counts for quick smoke runs or
// paper-strength statistics.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "numeric/types.hpp"

namespace psmn::benchutil {

inline double mcScale() {
  if (const char* env = std::getenv("PSMN_MC_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline size_t scaled(size_t samples) {
  const auto s = static_cast<size_t>(samples * mcScale());
  return s < 10 ? 10 : s;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace psmn::benchutil
