// Paper Fig. 8: the "statistical waveform" — the periodic steady state of
// a logic-path output overlaid with its mismatch-induced +-3 sigma(t)
// envelope, computed from the time-domain pseudo-noise envelopes (the
// time-domain noise analysis variant the paper describes in SS V-B).
//
// A small Monte-Carlo cross-checks sigma(t) at a few sample instants.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"

using namespace psmn;
using namespace psmn::benchutil;

int main() {
  header("Fig. 8: statistical waveform of the logic-path output A");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto lp = buildLogicPath(nl, kit, {});
  MnaSystem sys(nl);
  const int aIdx = nl.nodeIndex(lp.outA);

  Stopwatch sw;
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 800;
  opt.pss.warmupCycles = 2;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(lp.period);
  const StatisticalWaveform stat = an.statistical(aIdx);
  std::printf("time-domain pseudo-noise envelope computed in %.2fs\n\n",
              sw.seconds());

  // Render around the falling edge (the interesting part).
  const RealVector& sigma = stat.sigma;
  const size_t m = stat.times.size();
  size_t peak = 0;
  for (size_t k = 0; k < m; ++k) {
    if (sigma[k] > sigma[peak]) peak = k;
  }
  std::printf("%-10s %10s %10s %10s %10s\n", "t (ns)", "nominal", "sigma(t)",
              "-3sigma", "+3sigma");
  const size_t lo = peak > 40 ? peak - 40 : 0;
  const size_t hi = std::min(m, peak + 40);
  for (size_t k = lo; k < hi; k += 8) {
    std::printf("%-10.3f %10.4f %10.5f %10.4f %10.4f\n", 1e9 * stat.times[k],
                stat.nominal[k], sigma[k], stat.lower3()[k], stat.upper3()[k]);
  }
  std::printf("\npeak sigma(t) = %.2f mV at t = %.3f ns (the switching "
              "edge, as in the paper's figure)\n",
              1e3 * sigma[peak], 1e9 * stat.times[peak]);

  // Monte-Carlo cross-check of sigma(t) at the peak and two flanks.
  const size_t checks[3] = {peak, (lo + peak) / 2, (peak + hi) / 2};
  const size_t samples = scaled(200);
  std::vector<MomentAccumulator> acc(3);
  McOptions mo;
  mo.samples = samples;
  const McResult mc = MonteCarloEngine(sys, mo).run(
      {"v0", "v1", "v2"}, [&](const MnaSystem& s) -> RealVector {
        TranOptions topt;
        topt.method = IntegrationMethod::kBackwardEuler;
        // One warmup period, then sample the second period at the exact
        // PSS grid times.
        const TransientResult tr = runTransient(
            s, 0.0, 2 * lp.period, lp.period / 800, topt);
        const Waveform w = makeWaveform(tr.times, tr.states, aIdx);
        RealVector out;
        for (size_t c : checks) {
          out.push_back(w.valueAt(lp.period + stat.times[c]));
        }
        return out;
      });
  rule();
  std::printf("MC-%zu cross-check of sigma(t):\n", samples);
  for (int c = 0; c < 3; ++c) {
    std::printf("  t=%.3f ns: pseudo-noise %.3f mV  MC %.3f mV\n",
                1e9 * stat.times[checks[c]], 1e3 * sigma[checks[c]],
                1e3 * mc.moments[c].stddev());
  }
  return 0;
}
