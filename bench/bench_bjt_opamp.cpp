// BJT op-amp benchmarks: the bipolar analog deck (circuit/bjt_opamp, 20
// transistors, ~26 MNA unknowns) through the flows the paper times on its
// benchmark circuits.
//
//   BM_BjtOpAmpDc          — full DC operating point (bias chain + two
//       gain stages + class-AB output; plain Newton from zero).
//   BM_BjtOpAmpTransient   — 600 ns follower step response on a 2 ns grid.
//   BM_BjtOpAmpSensitivity — the same window with all 44 mismatch
//       injection columns (2 per BJT + the degeneration resistors), the
//       paper's one-solve alternative to a Monte-Carlo batch.
//
// The committed baseline (bench/baseline/bench_bjt_opamp.json) rides the
// same trend gate as the kernel benches: a regression in the Ebers-Moll
// eval, the dense stamp path, or the sensitivity recursion shows up here
// as a run-over-run slowdown.
#include <benchmark/benchmark.h>

#include "circuit/bjt_opamp.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/rng.hpp"

namespace psmn {
namespace {

// check_bench_trend.py normalizes every timing by the BM_DenseLuFactor/64
// anchor measured in the same run, so each gated binary must carry its
// own copy (same fixture as bench_kernels).
void BM_DenseLuFactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  RealMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 4.0;
  }
  for (auto _ : state) {
    DenseLU<Real> lu(a);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(64);

void BM_BjtOpAmpDc(benchmark::State& state) {
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);
  SolveStats stats;
  for (auto _ : state) {
    const DcResult dc = solveDc(sys);
    stats = dc.stats;
    benchmark::DoNotOptimize(dc.x.data());
  }
  state.counters["newton_iters"] = static_cast<double>(stats.newtonIterations);
}
BENCHMARK(BM_BjtOpAmpDc);

void BM_BjtOpAmpTransient(benchmark::State& state) {
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);
  SolveStats stats;
  for (auto _ : state) {
    const TransientResult tr = runTransient(sys, 0.0, 600e-9, 2e-9);
    stats = tr.stats;
    benchmark::DoNotOptimize(tr.finalState.data());
  }
  // Deterministic per-run cost counters, gated by check_bench_trend.py.
  state.counters["newton_iters"] = static_cast<double>(stats.newtonIterations);
  state.counters["lu_factors"] = static_cast<double>(stats.factorizations);
  state.counters["lu_refactors"] = static_cast<double>(stats.refactorizations);
}
BENCHMARK(BM_BjtOpAmpTransient);

void BM_BjtOpAmpSensitivity(benchmark::State& state) {
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  SolveStats stats;
  for (auto _ : state) {
    const TransientSensitivityResult sens =
        runTransientSensitivity(sys, 0.0, 600e-9, 2e-9, sources, topt);
    stats = sens.stats;
    benchmark::DoNotOptimize(sens.sens.data());
  }
  state.counters["sources"] = static_cast<double>(sources.size());
  state.counters["newton_iters"] = static_cast<double>(stats.newtonIterations);
  state.counters["lu_factors"] = static_cast<double>(stats.factorizations);
  state.counters["lu_refactors"] = static_cast<double>(stats.refactorizations);
}
BENCHMARK(BM_BjtOpAmpSensitivity);

}  // namespace
}  // namespace psmn

BENCHMARK_MAIN();
