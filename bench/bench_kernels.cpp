// Microbenchmarks of the solver kernels (google-benchmark): dense/sparse
// LU factor/refactor/multi-RHS, one MNA evaluation, dense-vs-sparse
// transient steps and transient sensitivity, one shooting-PSS solve.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "circuit/stdcell.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/rng.hpp"
#include "numeric/sparse_lu.hpp"
#include "rf/pss.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

RealMatrix randomMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  RealMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 4.0;
  }
  return a;
}

void BM_DenseLuFactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const RealMatrix a = randomMatrix(n, n);
  for (auto _ : state) {
    DenseLU<Real> lu(a);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const DenseLU<Real> lu(randomMatrix(n, n));
  RealVector b(n, 1.0);
  for (auto _ : state) {
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseLuFactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  RealMatrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    dense(i, i) = 4.0;
    for (int k = 0; k < 4; ++k) {
      const auto j = static_cast<size_t>(rng.uniform(0.0, 1.0) * n);
      if (j < n) dense(i, j) += rng.uniform(-1.0, 1.0);
    }
  }
  const auto sp = RealSparse::fromDense(dense);
  size_t nnz = 0;
  for (auto _ : state) {
    SparseLU<Real> lu(sp);
    nnz = lu.factorNonZeros();
    benchmark::DoNotOptimize(lu);
  }
  state.counters["factor_nnz"] = static_cast<double>(nnz);
}
BENCHMARK(BM_SparseLuFactor)->Arg(32)->Arg(128)->Arg(512);

RealSparse randomSparse(size_t n, uint64_t seed) {
  Rng rng(seed);
  RealMatrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    dense(i, i) = 4.0;
    for (int k = 0; k < 4; ++k) {
      const auto j = static_cast<size_t>(rng.uniform(0.0, 1.0) * n);
      if (j < n) dense(i, j) += rng.uniform(-1.0, 1.0);
    }
  }
  return RealSparse::fromDense(dense);
}

void BM_SparseLuRefactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto sp = randomSparse(n, n);
  SparseLU<Real> lu(sp);
  for (auto _ : state) {
    const bool ok = lu.refactor(sp);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["factor_nnz"] = static_cast<double>(lu.factorNonZeros());
}
BENCHMARK(BM_SparseLuRefactor)->Arg(32)->Arg(128)->Arg(512);

/// Factor-fill tracker on the acceptance fixtures: one full factor
/// (ordering + symbolic + numeric) of the transient Jacobian J = G + C/h
/// under the given column ordering. The `factor_nnz` counter feeds the
/// fill-trend check in scripts/check_bench_trend.py — nnz is a pure
/// function of the pattern and ordering, so unlike the timings it is
/// machine-independent and tracked un-normalized.
void BM_FactorFill(benchmark::State& state, bool ring, OrderingKind kind) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  if (ring) {
    RingOscillatorOptions oopt;
    oopt.stages = 63;
    buildRingOscillator(nl, kit, oopt);
  } else {
    InverterChainOptions copt;
    copt.stages = 8;
    copt.rows = 16;
    buildInverterChain(nl, kit, copt);
  }
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.6);
  RealSparse gsp, csp;
  sys.evalSparse(x, 0.0, nullptr, nullptr, &gsp, &csp, {});
  MergedSparseAssembler<Real> jac;
  jac.assemble(gsp, csp, 1.0 / 5e-12);
  size_t nnz = 0;
  for (auto _ : state) {
    SparseLU<Real> lu(jac.matrix, 0.1, kind);
    nnz = lu.factorNonZeros();
    benchmark::DoNotOptimize(lu);
  }
  state.counters["unknowns"] = static_cast<double>(sys.size());
  state.counters["factor_nnz"] = static_cast<double>(nnz);
}
BENCHMARK_CAPTURE(BM_FactorFill, chain_amd, false, OrderingKind::kAmd);
BENCHMARK_CAPTURE(BM_FactorFill, chain_degree, false, OrderingKind::kDegree);
BENCHMARK_CAPTURE(BM_FactorFill, ring_amd, true, OrderingKind::kAmd);
BENCHMARK_CAPTURE(BM_FactorFill, ring_degree, true, OrderingKind::kDegree);

void BM_SparseLuSolveMulti(benchmark::State& state) {
  // Batched multi-RHS substitution (the sensitivity engine's inner kernel)
  // vs. `nrhs` scattered solves at the same factorization.
  const auto n = static_cast<size_t>(state.range(0));
  const auto nrhs = static_cast<size_t>(state.range(1));
  const SparseLU<Real> lu(randomSparse(n, n));
  RealVector batch(n * nrhs, 1.0);
  for (auto _ : state) {
    lu.solveManyInPlace(batch, nrhs);
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_SparseLuSolveMulti)->Args({128, 1})->Args({128, 16})->Args({128, 64});

void BM_SparseLuSolveScattered(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto nrhs = static_cast<size_t>(state.range(1));
  const SparseLU<Real> lu(randomSparse(n, n));
  RealVector batch(n * nrhs, 1.0);
  for (auto _ : state) {
    for (size_t r = 0; r < nrhs; ++r) {
      lu.solveInPlace(std::span<Real>(batch.data() + r * n, n));
    }
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_SparseLuSolveScattered)->Args({128, 16})->Args({128, 64});

void BM_MnaEvalComparator(benchmark::State& state) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.5);
  RealVector f, q;
  RealMatrix g, c;
  for (auto _ : state) {
    sys.evalDense(x, 0.0, &f, &q, &g, &c, {});
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_MnaEvalComparator);

void BM_TransientRingOscPeriod(benchmark::State& state) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  // Initial state: alternate perturbation to kick the oscillation.
  RealVector x0(sys.size(), kit.vdd / 2);
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x0[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.2 : -0.2);
  }
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &x0;
  topt.storeStates = false;
  for (auto _ : state) {
    auto tr = runTransient(sys, 0.0, 2e-9, 5e-12, topt);
    benchmark::DoNotOptimize(tr);
  }
}
BENCHMARK(BM_TransientRingOscPeriod);

// ------------------------------------------------- dense vs sparse engines

/// One BE transient step (Newton + linear solves) on an N-stage ring
/// oscillator, per backend. The argument is the stage count; MNA unknowns
/// = stages + 2. The sparse path's cached-pattern assembly and symbolic
/// reuse make this scale near-linearly where dense grows as n^3.
void transientStepBench(benchmark::State& state, LinearSolverKind solver) {
  const int stages = static_cast<int>(state.range(0));
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  RingOscillatorOptions oopt;
  oopt.stages = stages;
  const auto osc = buildRingOscillator(nl, kit, oopt);
  MnaSystem sys(nl);
  const size_t n = sys.size();

  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.solver = solver;
  RealVector x0 = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x0[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.2 : -0.2);
  }
  RealVector q0;
  sys.evalDense(x0, 0.0, nullptr, &q0, nullptr, nullptr, {});

  TransientWorkspace ws;
  RealVector x = x0, q = q0, qd(n, 0.0);
  // Warm the workspace (pattern, symbolic factorization, buffer sizes).
  Real t = 0.0;
  const Real h = 5e-12;
  integrateStep(sys, opt.method, true, t, h, x, q, qd, nullptr, opt, ws);
  t += h;
  size_t steps = 0;
  for (auto _ : state) {
    if (!integrateStep(sys, opt.method, false, t, h, x, q, qd, nullptr, opt,
                       ws)) {
      state.SkipWithError("Newton failed");
      break;
    }
    t += h;
    ++steps;
  }
  state.counters["unknowns"] = static_cast<double>(n);
  state.counters["steps"] = static_cast<double>(steps);
  if (ws.sparse) {
    state.counters["factor_nnz"] =
        static_cast<double>(ws.slu.factorNonZeros());
  }
}

void BM_TransientStepDense(benchmark::State& state) {
  transientStepBench(state, LinearSolverKind::kDense);
}
void BM_TransientStepSparse(benchmark::State& state) {
  transientStepBench(state, LinearSolverKind::kSparse);
}
/// The stepping loop with a metrics registry bound (counters + phase
/// timers, no event collection): the acceptance bar is <2% over the
/// unbound BM_TransientStepSparse at the same stage count — every probe
/// on this path is an inline thread-local test plus a slot-local add.
void BM_TransientStepSparseTelemetry(benchmark::State& state) {
  TelemetryRegistry reg(1);
  TelemetryScope scope(reg, 0);
  transientStepBench(state, LinearSolverKind::kSparse);
}
BENCHMARK(BM_TransientStepDense)->Arg(15)->Arg(31)->Arg(63)->Arg(127);
BENCHMARK(BM_TransientStepSparse)->Arg(15)->Arg(31)->Arg(63)->Arg(127);
BENCHMARK(BM_TransientStepSparseTelemetry)->Arg(63)->Arg(127);

/// Full transient-sensitivity run on `rows` parallel 8-stage inverter
/// chains (2 mismatch sources per MOSFET, so ns = 32*rows columns):
/// exercises the shared accepted-step factorization and the batched
/// multi-RHS solve. Unknowns = 8*rows + 2.
void tranSensBench(benchmark::State& state, LinearSolverKind solver) {
  const int rows = static_cast<int>(state.range(0));
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 8;
  copt.rows = rows;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);

  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.solver = solver;
  SolveStats stats;
  for (auto _ : state) {
    const auto res =
        runTransientSensitivity(sys, 0.0, 1e-9, 10e-12, sources, opt);
    stats = res.stats;
    benchmark::DoNotOptimize(res);
  }
  state.counters["unknowns"] = static_cast<double>(sys.size());
  state.counters["sources"] = static_cast<double>(sources.size());
  // Per-run cost counters: deterministic (machine-independent), gated by
  // scripts/check_bench_trend.py alongside factor_nnz.
  state.counters["newton_iters"] = static_cast<double>(stats.newtonIterations);
  state.counters["lu_factors"] = static_cast<double>(stats.factorizations);
  state.counters["lu_refactors"] = static_cast<double>(stats.refactorizations);
}

void BM_TranSensDense(benchmark::State& state) {
  tranSensBench(state, LinearSolverKind::kDense);
}
void BM_TranSensSparse(benchmark::State& state) {
  tranSensBench(state, LinearSolverKind::kSparse);
}
BENCHMARK(BM_TranSensDense)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TranSensSparse)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ shooting PSS

/// Shared per-stage-count warmup + seed orbit for the PSS shooting
/// benchmark: computed once (with the sparse engine) and reused by both
/// backends, so each benchmark iteration measures one full shooting solve
/// from the same near-orbit guess — period integrations, monodromy
/// accumulation, bordered Newton, and the trajectory pack.
struct RingPssFixture {
  Netlist nl;
  std::unique_ptr<MnaSystem> sys;
  int phaseIndex = -1;
  RealVector x0;
  Real period = 0.0;
};

const RingPssFixture& ringPssFixture(int stages) {
  static std::map<int, std::unique_ptr<RingPssFixture>> cache;
  auto& slot = cache[stages];
  if (!slot) {
    slot = std::make_unique<RingPssFixture>();
    auto kit = ProcessKit::cmos130();
    RingOscillatorOptions oopt;
    oopt.stages = stages;
    const auto osc = buildRingOscillator(slot->nl, kit, oopt);
    slot->sys = std::make_unique<MnaSystem>(slot->nl);
    const Real runTime = stages > 20 ? 400e-9 : 30e-9;
    const Real dt = stages > 20 ? 20e-12 : 10e-12;
    const RingWarmup warm =
        warmupRingOscillator(*slot->sys, osc, runTime, dt);
    slot->phaseIndex = warm.phaseIndex;
    PssOptions opt;
    opt.stepsPerPeriod = 180;
    opt.solver = LinearSolverKind::kSparse;
    const PssResult seed = solvePssAutonomous(
        *slot->sys, warm.periodEstimate, warm.phaseIndex, warm.state, opt);
    slot->x0 = seed.states[0];
    slot->period = seed.period;
  }
  return *slot;
}

/// One autonomous shooting solve on an N-stage ring oscillator (N + 2 MNA
/// unknowns), per backend. The dense path factors every period-integration
/// step at O(n^3) and accumulates the monodromy through dense solves; the
/// sparse path rides the cached-pattern workspace, numeric
/// refactorizations, and batched monodromy substitutions.
void pssShootingBench(benchmark::State& state, LinearSolverKind solver) {
  const int stages = static_cast<int>(state.range(0));
  const RingPssFixture& fx = ringPssFixture(stages);
  PssOptions opt;
  opt.stepsPerPeriod = 180;
  opt.solver = solver;
  size_t iters = 0;
  SolveStats stats;
  for (auto _ : state) {
    const PssResult pss = solvePssAutonomous(*fx.sys, fx.period,
                                             fx.phaseIndex, fx.x0, opt);
    iters += pss.shootingIterations;
    stats = pss.stats;
    benchmark::DoNotOptimize(pss);
  }
  state.counters["unknowns"] = static_cast<double>(fx.sys->size());
  state.counters["shooting_iters"] = static_cast<double>(iters);
  // Per-run cost counters, gated by scripts/check_bench_trend.py.
  state.counters["newton_iters"] = static_cast<double>(stats.newtonIterations);
  state.counters["lu_factors"] = static_cast<double>(stats.factorizations);
  state.counters["lu_refactors"] = static_cast<double>(stats.refactorizations);
}

void BM_PssShootingDense(benchmark::State& state) {
  pssShootingBench(state, LinearSolverKind::kDense);
}
void BM_PssShootingSparse(benchmark::State& state) {
  pssShootingBench(state, LinearSolverKind::kSparse);
}
// 15 stages = 17 unknowns (below the sparse crossover), 63 stages = 65
// unknowns (the acceptance fixture: sparse shooting must beat dense).
BENCHMARK(BM_PssShootingDense)->Arg(15)->Arg(63)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PssShootingSparse)->Arg(15)->Arg(63)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace psmn

BENCHMARK_MAIN();
