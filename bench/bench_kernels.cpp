// Microbenchmarks of the solver kernels (google-benchmark): dense/sparse
// LU, one MNA evaluation, one transient step, one shooting-PSS solve.
#include <benchmark/benchmark.h>

#include "circuit/stdcell.hpp"
#include "engine/transient.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/rng.hpp"
#include "numeric/sparse_lu.hpp"
#include "rf/pss.hpp"

namespace psmn {
namespace {

RealMatrix randomMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  RealMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 4.0;
  }
  return a;
}

void BM_DenseLuFactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const RealMatrix a = randomMatrix(n, n);
  for (auto _ : state) {
    DenseLU<Real> lu(a);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const DenseLU<Real> lu(randomMatrix(n, n));
  RealVector b(n, 1.0);
  for (auto _ : state) {
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseLuFactor(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  RealMatrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    dense(i, i) = 4.0;
    for (int k = 0; k < 4; ++k) {
      const auto j = static_cast<size_t>(rng.uniform(0.0, 1.0) * n);
      if (j < n) dense(i, j) += rng.uniform(-1.0, 1.0);
    }
  }
  const auto sp = RealSparse::fromDense(dense);
  for (auto _ : state) {
    SparseLU<Real> lu(sp);
    benchmark::DoNotOptimize(lu);
  }
}
BENCHMARK(BM_SparseLuFactor)->Arg(32)->Arg(128)->Arg(512);

void BM_MnaEvalComparator(benchmark::State& state) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.5);
  RealVector f, q;
  RealMatrix g, c;
  for (auto _ : state) {
    sys.evalDense(x, 0.0, &f, &q, &g, &c, {});
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_MnaEvalComparator);

void BM_TransientRingOscPeriod(benchmark::State& state) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  // Initial state: alternate perturbation to kick the oscillation.
  RealVector x0(sys.size(), kit.vdd / 2);
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x0[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.2 : -0.2);
  }
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &x0;
  topt.storeStates = false;
  for (auto _ : state) {
    auto tr = runTransient(sys, 0.0, 2e-9, 5e-12, topt);
    benchmark::DoNotOptimize(tr);
  }
}
BENCHMARK(BM_TransientRingOscPeriod);

}  // namespace
}  // namespace psmn

BENCHMARK_MAIN();
