// Paper Fig. 9: histogram of the comparator input offset voltage from
// Monte-Carlo, overlaid with the Gaussian PDF implied by the pseudo-noise
// analysis sigma.
//
// Paper flavour: sigma(VOS) ~ 28.7 mV at 3sigma(IDS) ~ 14%; here the
// absolute sigma depends on the rebuilt process kit, and the claim being
// reproduced is that the analytic Gaussian matches the MC histogram.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/histogram.hpp"
#include "numeric/statistics.hpp"
#include "util/units.hpp"

using namespace psmn;
using namespace psmn::benchutil;

int main() {
  header("Fig. 9: comparator offset histogram vs pseudo-noise PDF");
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const Real T = tb.clkPeriod;

  Stopwatch swPn;
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  opt.pss.warmupCycles = 40;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(T);
  const VariationResult v = an.dcVariation(tb.vosIndex);
  const Real sigmaPn = v.sigma();
  std::printf("pseudo-noise: sigma(VOS) = %s V (PSD at 1 Hz baseband: %s "
              "V^2/Hz) [%.2fs]\n",
              formatEng(sigmaPn, 4).c_str(),
              formatEng(v.paperVariance, 3).c_str(), swPn.seconds());

  const size_t samples = scaled(2000);
  // From power-up (vos = 0) until the offset loop settles (see table2).
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    topt.storeStates = false;
    RealVector x = solveDc(s, {}).x;
    x[tb.vosIndex] = 0.0;
    Real prev = 1e9;
    TranOptions t2 = topt;
    for (int block = 0; block < 30; ++block) {
      t2.initialState = &x;
      const TransientResult tr = runTransient(s, 0.0, 10 * T, T / 100, t2);
      x = tr.finalState;
      if (std::fabs(x[tb.vosIndex] - prev) < 1e-4) break;
      prev = x[tb.vosIndex];
    }
    return {x[tb.vosIndex]};
  };
  McOptions mo;
  mo.samples = samples;
  const McResult mc = MonteCarloEngine(sys, mo).run({"vos"}, measure);
  std::printf("monte-carlo (%zu samples): sigma = %s V, mean = %s V, "
              "skewness = %+.3f [%.1fs]\n",
              samples, formatEng(mc.sigma(), 4).c_str(),
              formatEng(mc.meanOf(), 3).c_str(),
              mc.moments[0].normalizedSkewness(), mc.elapsedSeconds);
  std::printf("agreement: sigma_pn / sigma_mc = %.3f (MC 95%% conf "
              "+-%.1f%%)\n\n",
              sigmaPn / mc.sigma(), 100.0 * sigmaConfidence95(samples));

  const Histogram h = Histogram::fromSamples(mc.column(0), 31,
                                             -4.0 * sigmaPn, 4.0 * sigmaPn);
  std::printf("histogram (#) with pseudo-noise Gaussian PDF (*):\n%s\n",
              h.render(56, [&](Real x) {
                 return gaussPdf(x, 0.0, sigmaPn);
               }).c_str());
  return 0;
}
