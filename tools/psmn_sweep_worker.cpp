// Minimal process-sweep worker binary: the re-entry target the runtime
// tests and benchmarks hand to ProcessSweepOptions::workerExe (they link
// gtest/benchmark mains, so they cannot re-enter themselves the way
// `netlist_runner --worker` does). Speaks the worker protocol on
// stdin/stdout; anything else on the command line is rejected so a
// mis-wired spawn fails loudly.
#include <cstdio>
#include <cstring>

#include "runtime/process_sweep.hpp"

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--worker") == 0) {
    return psmn::runSweepWorker(0, 1);
  }
  std::fprintf(stderr, "usage: %s --worker  (spawned by runProcessSweep)\n",
               argv[0]);
  return 2;
}
